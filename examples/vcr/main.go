// VCR session: the client has "full VCR-like control over the transmitted
// material" (§3, per the ATM Forum VoD spec): pause, resume, arbitrary
// random access, and quality adjustment for constrained clients (§4.3).
// Seeks flush the client buffers, which triggers the §4.1 emergency refill.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 3, netsim.LAN())

	movie := core.GenerateMovie("casablanca", 120*time.Second, 1)
	deployment, err := core.Deploy(core.DeployOptions{
		Clock:   clk,
		Network: network,
		Servers: []string{"server-1", "server-2"},
		Movies:  []*core.Movie{movie},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Stop()
	clk.Advance(time.Second)

	viewer, err := deployment.NewClient("viewer-1")
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Watch("casablanca"); err != nil {
		log.Fatal(err)
	}

	status := func(what string) {
		c := viewer.Counters()
		occ := viewer.Occupancy()
		fmt.Printf("%-34s displayed=%-5d buffered=%-3d emergencies=%d\n",
			what, c.Displayed, occ.CombinedFrames, viewer.Stats().EmergenciesSent)
	}

	clk.Advance(10 * time.Second)
	status("t=10s  watching normally:")

	if err := viewer.Pause(); err != nil {
		log.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	status("t=15s  paused for 5s (frozen):")

	if err := viewer.Resume(); err != nil {
		log.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	status("t=20s  resumed:")

	// Random access deep into the movie: the server snaps to the next I
	// frame; the flushed buffers trigger an emergency refill.
	if err := viewer.Seek(2400); err != nil {
		log.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	status("t=25s  after seek to frame 2400:")

	// A constrained client asks for a third of the frames; the server
	// keeps every I frame and thins the rest (§4.3).
	if err := viewer.SetQuality(10); err != nil {
		log.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	serving := deployment.ServingServer("viewer-1")
	thinned := deployment.Server(serving).Stats().FramesThinned
	status("t=30s  at 10 fps quality:")
	fmt.Printf("%-34s server thinned %d frames, every I frame still delivered\n", "", thinned)

	if err := viewer.StopWatching(); err != nil {
		log.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	fmt.Printf("\nsession closed; servers now serve %q\n",
		deployment.ServingServer("viewer-1"))
}
