// Quickstart: deploy a fault-tolerant VoD service (three servers, one
// movie replicated on all of them), connect a client, and watch the first
// half minute of playback — all in-process on the simulated network, so it
// runs in milliseconds and needs no network access.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/netsim"
)

func main() {
	// A virtual clock plus a simulated switched-Ethernet LAN. Swap in
	// clock.Real{} and UDP endpoints for a real deployment (see
	// examples/udplan).
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 42, netsim.LAN())

	movie := core.GenerateMovie("casablanca", 90*time.Second, 1)
	deployment, err := core.Deploy(core.DeployOptions{
		Clock:    clk,
		Network:  network,
		Servers:  []string{"server-1", "server-2", "server-3"},
		Movies:   []*core.Movie{movie},
		Replicas: 3, // tolerate 2 server failures
	})
	if err != nil {
		log.Fatal(err)
	}
	defer deployment.Stop()
	clk.Advance(time.Second) // let the server group form

	viewer, err := deployment.NewClient("viewer-1")
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Watch("casablanca"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("movie:", movie)
	fmt.Println("replicas:", deployment.Placement["casablanca"])
	fmt.Println()
	fmt.Printf("%6s  %10s  %9s  %8s  %7s  %s\n",
		"time", "displayed", "buffered", "skipped", "stalls", "served by")
	for i := 0; i < 6; i++ {
		clk.Advance(5 * time.Second)
		c := viewer.Counters()
		occ := viewer.Occupancy()
		fmt.Printf("%6s  %10d  %9d  %8d  %7d  %s\n",
			time.Duration(i+1)*5*time.Second, c.Displayed, occ.CombinedFrames,
			c.Skipped(), c.Stalls, deployment.ServingServer("viewer-1"))
	}

	fmt.Println("\nplayback is smooth: the buffers sit between the water",
		"marks (54–65 frames) and nothing was skipped.")
}
