// HA counter: the paper's closing claim (§8) is that "the concepts
// demonstrated in this work are general, and may be exploited to construct
// a variety of highly available servers". This example builds a different
// highly-available service on the same group communication substrate: a
// replicated counter (a tiny replicated state machine).
//
// Every replica applies increments delivered by AGREED multicast, so all
// replicas apply the same operations in the same order — no matter which
// replica a client talks to, and across replica crashes.
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/gcs"
	"repro/internal/netsim"
	"repro/internal/transport"
)

// replica is one member of the highly-available counter service.
type replica struct {
	id     string
	member *gcs.Member

	mu      sync.Mutex
	value   int64
	applied int
	view    gcs.View
}

func newReplica(clk clock.Clock, network transport.Network, id string, contacts ...gcs.ProcessID) (*replica, error) {
	ep, err := network.NewEndpoint(transport.Addr(id))
	if err != nil {
		return nil, err
	}
	proc := gcs.NewProcess(gcs.Config{Clock: clk, Endpoint: ep})
	r := &replica{id: id}
	m, err := proc.Join("ha.counter", gcs.Handlers{
		OnView: func(v gcs.View) {
			r.mu.Lock()
			r.view = v
			r.mu.Unlock()
		},
		OnMessage: func(_ string, _ gcs.ProcessID, payload []byte) {
			delta, err := strconv.ParseInt(string(payload), 10, 64)
			if err != nil {
				return
			}
			r.mu.Lock()
			r.value += delta
			r.applied++
			r.mu.Unlock()
		},
	}, contacts...)
	if err != nil {
		return nil, err
	}
	r.member = m
	return r, nil
}

// Add submits an increment through total-order multicast: every replica
// applies it exactly once, in the same position of the operation sequence.
func (r *replica) Add(delta int64) error {
	return r.member.MulticastAgreed([]byte(strconv.FormatInt(delta, 10)))
}

func (r *replica) state() (int64, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.value, r.applied, len(r.view.Members)
}

func main() {
	clk := clock.NewVirtual(time.Now())
	network := netsim.New(clk, 23, netsim.LAN())

	ids := []string{"replica-1", "replica-2", "replica-3"}
	replicas := make([]*replica, 0, len(ids))
	for _, id := range ids {
		rep, err := newReplica(clk, network, id, gcs.ProcessID(ids[0]))
		if err != nil {
			log.Fatal(err)
		}
		replicas = append(replicas, rep)
	}
	clk.Advance(2 * time.Second) // group forms

	// Concurrent increments from different replicas: agreed delivery puts
	// them in one global order everywhere.
	for i := 0; i < 10; i++ {
		if err := replicas[i%3].Add(int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	clk.Advance(time.Second)
	for _, rep := range replicas {
		v, n, members := rep.state()
		fmt.Printf("%s: value=%d applied=%d view=%d members\n", rep.id, v, n, members)
	}

	// Crash the coordinator; the service keeps accepting operations.
	fmt.Println("\ncrashing replica-1 ...")
	network.Crash("replica-1")
	clk.Advance(3 * time.Second)
	for i := 10; i < 15; i++ {
		if err := replicas[1+i%2].Add(int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	clk.Advance(2 * time.Second)
	for _, rep := range replicas[1:] {
		v, n, members := rep.state()
		fmt.Printf("%s: value=%d applied=%d view=%d members\n", rep.id, v, n, members)
	}
	fmt.Println("\nsurvivors agree — the same substrate that keeps movies",
		"playing keeps any replicated service consistent (§8).")
}
